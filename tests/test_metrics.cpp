// Metric accounting against a hand-computed 3-job fixture on a 2-processor
// machine under FCFS without backfilling:
//   J1: submit 0, 1 proc, run 10  -> starts 0,  ends 10, wait 0,  bsld 1
//   J2: submit 0, 2 proc, run 5   -> starts 10, ends 15, wait 10, bsld 1.5
//   J3: submit 1, 1 proc, run 2   -> starts 15, ends 17, wait 14, bsld 1.6
#include <vector>

#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "test_util.hpp"

int main() {
  using namespace rlsched;
  std::vector<trace::Job> jobs(3);
  jobs[0] = {.id = 1, .submit_time = 0, .run_time = 10, .requested_time = 10,
             .requested_procs = 1, .user = 1};
  jobs[1] = {.id = 2, .submit_time = 0, .run_time = 5, .requested_time = 5,
             .requested_procs = 2, .user = 2};
  jobs[2] = {.id = 3, .submit_time = 1, .run_time = 2, .requested_time = 2,
             .requested_procs = 1, .user = 2};

  sim::SchedulingEnv env(2);
  env.reset(jobs);
  const auto r = env.run_priority(sched::fcfs_priority());

  CHECK(r.jobs == 3);
  CHECK_NEAR(env.jobs()[0].start_time, 0.0, 1e-9);
  CHECK_NEAR(env.jobs()[1].start_time, 10.0, 1e-9);
  CHECK_NEAR(env.jobs()[2].start_time, 15.0, 1e-9);

  CHECK_NEAR(r.avg_wait, (0.0 + 10.0 + 14.0) / 3.0, 1e-9);
  // bounded slowdown with the 10 s interactive threshold
  CHECK_NEAR(r.avg_bounded_slowdown, (1.0 + 1.5 + 1.6) / 3.0, 1e-9);
  // unbounded slowdown: (10/10 + 15/5 + 16/2) / 3 = 4
  CHECK_NEAR(r.avg_slowdown, 4.0, 1e-9);
  CHECK_NEAR(r.avg_turnaround, (10.0 + 15.0 + 16.0) / 3.0, 1e-9);
  CHECK_NEAR(r.makespan, 17.0, 1e-9);
  // busy area (10*1 + 5*2 + 2*1) over 2 procs * 17 s
  CHECK_NEAR(r.utilization, 22.0 / 34.0, 1e-9);
  // user 1: bsld 1; user 2: (1.5 + 1.6)/2 = 1.55 -> fairness aggregate 1.55
  CHECK_NEAR(r.max_user_bounded_slowdown, 1.55, 1e-9);

  // value() dispatch agrees with the named fields.
  CHECK_NEAR(r.value(sim::Metric::BoundedSlowdown), r.avg_bounded_slowdown,
             0.0);
  CHECK_NEAR(r.value(sim::Metric::Utilization), r.utilization, 0.0);
  CHECK_NEAR(r.value(sim::Metric::FairBoundedSlowdown), 1.55, 1e-9);

  // per-user helper matches the incremental accounting.
  const auto per_user = sim::per_user_bounded_slowdown(env.jobs());
  CHECK(per_user.size() == 2);
  CHECK(per_user[0].first == 1);
  CHECK_NEAR(per_user[0].second, 1.0, 1e-9);
  CHECK_NEAR(per_user[1].second, 1.55, 1e-9);

  std::puts("metric math: OK");
  return 0;
}
