// Masked argmax/softmax determinism: ties break to the lowest index,
// masked-out slots are never chosen and carry zero probability.
#include <array>

#include "nn/ops.hpp"
#include "test_util.hpp"

int main() {
  constexpr std::size_t N = 8;
  std::array<float, N> v = {1.0f, 5.0f, 5.0f, -2.0f, 9.0f, 5.0f, 0.0f, 9.0f};
  std::array<std::uint8_t, N> mask = {1, 1, 1, 1, 0, 1, 1, 0};

  // 9.0 at indices 4 and 7 is masked out; the max among valid is 5.0,
  // tied at 1, 2, 5 -> deterministic winner is index 1.
  CHECK(rlsched::nn::argmax_masked(v, mask) == 1);

  // Identical logits everywhere: always the first valid slot.
  v.fill(3.25f);
  CHECK(rlsched::nn::argmax_masked(v, mask) == 0);
  std::array<std::uint8_t, N> tail_only = {0, 0, 0, 0, 0, 0, 1, 1};
  CHECK(rlsched::nn::argmax_masked(v, tail_only) == 6);

  // Repeated evaluation is bit-stable.
  for (int rep = 0; rep < 100; ++rep) {
    CHECK(rlsched::nn::argmax_masked(v, tail_only) == 6);
  }

  // Softmax: masked entries are exactly zero, valid ones sum to 1.
  std::array<float, N> logits = {0.5f, -1.0f, 2.0f, 0.0f,
                                 100.0f, 1.0f, -3.0f, 50.0f};
  std::array<float, N> probs{};
  rlsched::nn::softmax_masked(logits.data(), mask.data(), probs.data(), N);
  float sum = 0.0f;
  for (std::size_t i = 0; i < N; ++i) {
    if (mask[i] == 0) CHECK(probs[i] == 0.0f);
    CHECK(probs[i] >= 0.0f);
    sum += probs[i];
  }
  CHECK_NEAR(sum, 1.0, 1e-5);

  // All-masked input: no crash, all-zero probabilities, argmax returns 0.
  std::array<std::uint8_t, N> none{};
  rlsched::nn::softmax_masked(logits.data(), none.data(), probs.data(), N);
  for (const float p : probs) CHECK(p == 0.0f);
  CHECK(rlsched::nn::argmax_masked(logits.data(), none.data(), N) == 0);

  std::puts("masked argmax/softmax: OK");
  return 0;
}
