// Bounded-window exact scheduler (sched/exact.hpp) against ground truth:
//  (1) hand-computed fixtures for the serial placement model (staircase
//      waits, bounded-slowdown accumulation);
//  (2) brute-force permutation cross-check on <=6-job windows — the
//      branch-and-bound optimum must equal the enumerated optimum
//      BITWISE, order included, for both objectives;
//  (3) bound-admissibility fuzz: the root lower bound never exceeds the
//      true optimum on 1k random windows;
//  (4) node-budget fallback: an exhausted budget still returns a valid
//      full schedule, flagged proved=false, objective >= bound;
//  (5) greedy heuristic emulation is never better than the optimum;
//  (6) the ExactWindowPolicy env adapter is deterministic and its
//      priority-driven and step()-driven paths produce bitwise-identical
//      schedules.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "sched/exact.hpp"
#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace {
using namespace rlsched;

trace::Job make_job(std::int64_t id, double submit, double run, double req,
                    int procs, int user = 0) {
  trace::Job j;
  j.id = id;
  j.submit_time = submit;
  j.run_time = run;
  j.requested_time = req;
  j.requested_procs = procs;
  j.user = user;
  return j;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Random standalone window: a 2..16-processor machine mid-flight (random
/// free capacity, the busy remainder released over strictly increasing
/// future completion times) and n pending jobs with submits at or before
/// `now`. Capacity always returns to the full machine, so every job places.
sched::WindowProblem random_window(util::Rng& rng, std::size_t n) {
  sched::WindowProblem p;
  p.processors = 2 + static_cast<std::int32_t>(rng.below(15));
  p.free = static_cast<std::int32_t>(
      rng.below(static_cast<std::uint64_t>(p.processors) + 1));
  p.now = rng.uniform(0.0, 1000.0);
  std::int32_t busy = p.processors - p.free;
  double t = p.now;
  while (busy > 0) {
    const std::int32_t r =
        1 + static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(busy)));
    t += rng.uniform(1.0, 300.0);
    p.releases.push_back({t, r});
    busy -= r;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const double run = rng.uniform(0.0, 400.0);
    p.jobs.push_back(make_job(
        static_cast<std::int64_t>(k), p.now - rng.uniform(0.0, 500.0), run,
        run * (1.0 + rng.uniform()),
        1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(p.processors))),
        static_cast<int>(rng.below(4))));
  }
  return p;
}

struct Brute {
  double objective = 0.0;
  std::vector<std::uint32_t> order;
};

/// Strict-< lexicographic enumeration — the reference optimum.
Brute brute_force(sched::ExactWindowScheduler& s,
                  const sched::WindowProblem& p) {
  std::vector<std::uint32_t> idx(p.jobs.size());
  std::iota(idx.begin(), idx.end(), 0u);
  Brute best;
  bool first = true;
  do {
    const double v = s.evaluate_order(p, idx);
    if (first || v < best.objective) {
      best.objective = v;
      best.order = idx;
      first = false;
    }
  } while (std::next_permutation(idx.begin(), idx.end()));
  return best;
}
}  // namespace

int main() {
  using namespace rlsched;

  // ---------- hand-computed placement fixtures ----------
  {
    // One busy processor machine: P=1, free=1, no releases. Jobs: #0 runs
    // 100s, #1 runs 2s, both submitted at t=0. Serial placement:
    //   [0,1]: s0=0 -> bsld0 = 100/100 = 1; s1=100 -> (100+2)/10 = 10.2
    //          => total 11.2
    //   [1,0]: s1=0 -> bsld1 = max(1, 2/10) = 1; s0=2 -> 102/100 = 1.02
    //          => total 2.02  (the optimum; SJF order)
    sched::WindowProblem p;
    p.processors = 1;
    p.free = 1;
    p.jobs.push_back(make_job(0, 0.0, 100.0, 100.0, 1));
    p.jobs.push_back(make_job(1, 0.0, 2.0, 2.0, 1));

    sched::ExactWindowScheduler s(
        {.window = 8, .max_nodes = 0,
         .objective = sched::ExactObjective::TotalBoundedSlowdown});
    const std::array<std::uint32_t, 2> fwd{0, 1}, rev{1, 0};
    CHECK_NEAR(s.evaluate_order(p, fwd), 11.2, 1e-12);
    CHECK_NEAR(s.evaluate_order(p, rev), 2.02, 1e-12);

    const auto sol = s.solve(p);
    CHECK(sol.proved);
    CHECK(sol.count == 2);
    CHECK(sol.order[0] == 1 && sol.order[1] == 0);
    CHECK_NEAR(sol.objective, 2.02, 1e-12);
    CHECK(sol.bound <= sol.objective + 1e-12);
  }
  {
    // Staircase wait: P=4, 2 free now, 2 more released at t=5. A 4-proc
    // job submitted at 0 with run 20 cannot start before t=5:
    //   bsld = (5 + 20) / 20 = 1.25.
    sched::WindowProblem p;
    p.now = 0.0;
    p.processors = 4;
    p.free = 2;
    p.releases.push_back({5.0, 2});
    p.jobs.push_back(make_job(0, 0.0, 20.0, 20.0, 4));
    sched::ExactWindowScheduler s;
    const std::array<std::uint32_t, 1> one{0};
    CHECK_NEAR(s.evaluate_order(p, one), 1.25, 1e-12);
    const auto sol = s.solve(p);
    CHECK(sol.proved && sol.count == 1);
    CHECK_NEAR(sol.objective, 1.25, 1e-12);
  }

  // ---------- brute-force cross-check, both objectives ----------
  for (const auto objective : {sched::ExactObjective::TotalBoundedSlowdown,
                               sched::ExactObjective::Makespan}) {
    sched::ExactWindowScheduler s(
        {.window = 8, .max_nodes = 0, .objective = objective});
    util::Rng rng = util::Rng::substream(
        1234, objective == sched::ExactObjective::Makespan ? 1 : 0);
    for (int w = 0; w < 150; ++w) {
      const std::size_t n = 1 + rng.below(6);  // 1..6 jobs
      const auto p = random_window(rng, n);
      const Brute ref = brute_force(s, p);
      const auto sol = s.solve(p);
      CHECK(sol.proved);
      CHECK(sol.count == n);
      CHECK(same_bits(sol.objective, ref.objective));
      for (std::size_t k = 0; k < n; ++k) CHECK(sol.order[k] == ref.order[k]);
      // The reported objective is the incumbent's own accumulation:
      // replaying the returned order must reproduce it bitwise.
      CHECK(same_bits(
          s.evaluate_order(p, std::span(sol.order).first(n)), sol.objective));
    }
  }

  // ---------- bound admissibility fuzz: 1k random windows ----------
  {
    std::uint64_t stream = 7;
    for (const auto objective : {sched::ExactObjective::TotalBoundedSlowdown,
                                 sched::ExactObjective::Makespan}) {
      sched::ExactWindowScheduler s(
          {.window = 8, .max_nodes = 0, .objective = objective});
      util::Rng rng = util::Rng::substream(99, stream++);
      for (int w = 0; w < 500; ++w) {
        const auto p = random_window(rng, 2 + rng.below(5));
        const auto sol = s.solve(p);
        CHECK(sol.proved);
        // Tiny absolute+relative slack: bound and objective sum terms in
        // different orders, so last-ulp rounding may differ.
        const double slack = 1e-9 * (1.0 + std::fabs(sol.objective));
        CHECK(s.root_bound(p) <= sol.objective + slack);
        CHECK(same_bits(s.root_bound(p), sol.bound));
      }
    }
  }

  // ---------- node-budget fallback ----------
  {
    sched::ExactWindowScheduler cheap(
        {.window = 8, .max_nodes = 10,
         .objective = sched::ExactObjective::TotalBoundedSlowdown});
    util::Rng rng = util::Rng::substream(4242, 0);
    const auto p = random_window(rng, 8);
    const auto sol = cheap.solve(p);
    CHECK(!sol.proved);  // 8 jobs cannot be proved in 10 placements
    CHECK(sol.count == 8);
    // Valid full schedule: the order is a permutation and replaying it
    // reproduces the reported objective exactly.
    std::uint32_t seen = 0;
    for (std::size_t k = 0; k < 8; ++k) {
      CHECK(sol.order[k] < 8);
      CHECK(!(seen & (1u << sol.order[k])));
      seen |= 1u << sol.order[k];
    }
    CHECK(same_bits(cheap.evaluate_order(p, std::span(sol.order).first(8)),
                    sol.objective));
    CHECK(sol.bound <= sol.objective + 1e-9 * (1.0 + sol.objective));

    // The same window with an unlimited budget proves, and the proved
    // optimum never exceeds the budgeted incumbent.
    sched::ExactWindowScheduler full(
        {.window = 8, .max_nodes = 0,
         .objective = sched::ExactObjective::TotalBoundedSlowdown});
    const auto opt = full.solve(p);
    CHECK(opt.proved);
    CHECK(opt.objective <= sol.objective);
    CHECK(opt.nodes > sol.nodes);
  }

  // ---------- greedy emulation is never better than the optimum ----------
  {
    sched::ExactWindowScheduler s(
        {.window = 8, .max_nodes = 0,
         .objective = sched::ExactObjective::TotalBoundedSlowdown});
    util::Rng rng = util::Rng::substream(31337, 0);
    for (int w = 0; w < 100; ++w) {
      const auto p = random_window(rng, 2 + rng.below(5));
      const auto opt = s.solve(p);
      for (const auto& h : sched::all_heuristics()) {
        const auto g = s.evaluate_greedy(p, h.priority);
        CHECK(!g.proved);
        CHECK(g.objective >= opt.objective);  // same arithmetic: exact >=
        CHECK(same_bits(g.bound, opt.bound));
      }
      // FCFS greedy on an all-distinct-submit window is the submit order.
      auto q = p;
      std::sort(q.jobs.begin(), q.jobs.end(),
                [](const trace::Job& a, const trace::Job& b) {
                  return a.submit_time < b.submit_time;
                });
      const auto g = s.evaluate_greedy(q, sched::fcfs_priority());
      for (std::uint32_t k = 0; k < g.count; ++k) CHECK(g.order[k] == k);
    }
  }

  // ---------- env adapter: deterministic, priority == step() path ----------
  {
    util::Rng rng = util::Rng::substream(2020, 0);
    std::vector<trace::Job> jobs;
    double submit = 0.0;
    for (int i = 0; i < 80; ++i) {
      submit += rng.exponential(30.0);
      const double run = rng.uniform(1.0, 600.0);
      jobs.push_back(make_job(i, submit, run, run * 1.5,
                              1 + static_cast<int>(rng.below(16)),
                              static_cast<int>(rng.below(5))));
    }

    sim::SchedulingEnv env(16);
    sched::ExactWindowPolicy pol(
        env, {.window = 6, .max_nodes = 20000,
              .objective = sched::ExactObjective::TotalBoundedSlowdown});

    env.reset(jobs);
    pol.rearm();
    const auto r1 = env.run_priority(pol.priority(), pol.kKind);
    CHECK(r1.jobs == jobs.size());
    CHECK(pol.stats().solves > 0);
    CHECK(pol.stats().proved == pol.stats().solves);  // budget is ample
    CHECK(pol.stats().bound_sum <=
          pol.stats().objective_sum + 1e-9 * (1.0 + pol.stats().objective_sum));

    env.reset(jobs);
    pol.rearm();
    const auto r2 = env.run_priority(pol.priority(), pol.kKind);
    CHECK(sim::bitwise_equal(r1, r2));

    env.reset(jobs);
    pol.rearm();
    bool done = false;
    while (!done) done = env.step(pol.next_action());
    CHECK(sim::bitwise_equal(r1, env.result()));

    // The packaged Heuristic row drives the same schedule.
    env.reset(jobs);
    pol.rearm();
    const auto h = sched::exact_heuristic(pol);
    CHECK(h.name == "EXACT");
    CHECK(sim::bitwise_equal(r1, env.run_priority(h.priority, h.kind)));
  }

  std::printf("test_exact_window: all checks passed\n");
  return 0;
}
