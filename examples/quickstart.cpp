// Quickstart: the 30-second tour of the RLScheduler public API.
//
//   1. synthesize a workload (or load an SWF file from the Parallel
//      Workloads Archive with trace::Trace::load_swf),
//   2. train an RL scheduling policy on it,
//   3. schedule an unseen job sequence and compare against SJF.
//
// Build & run:  ./build/examples/quickstart [epochs]
#include <cstdlib>
#include <iostream>

#include "core/rlscheduler.hpp"
#include "sched/heuristics.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace rlsched;
  const std::size_t epochs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;

  // 1. A 10k-job workload shaped like SDSC-SP2 (Table II characteristics).
  auto trace = workload::make_trace("SDSC-SP2", 10000, /*seed=*/42);
  const auto c = trace.characteristics();
  std::cout << "workload: " << c.name << "  procs=" << c.processors
            << "  jobs=" << c.jobs
            << "  mean inter-arrival=" << c.mean_interarrival << "s\n";

  // 2. Train. The config keeps the paper's structure (kernel policy network,
  //    256-job trajectories) at a laptop-friendly budget.
  core::RLSchedulerConfig cfg;
  cfg.metric = sim::Metric::BoundedSlowdown;
  cfg.trajectories_per_epoch = 10;
  cfg.pi_iters = 10;
  cfg.v_iters = 10;
  cfg.minibatch = 512;
  core::RLScheduler scheduler(trace, cfg);
  std::cout << "training " << epochs << " epochs...\n";
  scheduler.train(epochs, [](const rl::EpochStats& e) {
    std::cout << "  epoch " << e.epoch << ": avg bsld " << e.avg_metric
              << " (" << e.seconds << "s)\n";
  });

  // 3. Evaluate on an unseen 512-job sequence, against SJF, with EASY
  //    backfilling enabled for both.
  util::Rng rng(7);
  const auto seq = trace.sample_sequence(rng, 512);
  core::ScheduleRequest req;
  req.jobs = &seq;
  req.backfill = true;
  const auto rl = scheduler.schedule(req).value().run();

  sim::EnvConfig env_cfg;
  env_cfg.backfill = true;
  sim::SchedulingEnv env(trace.processors(), env_cfg);
  env.reset(seq);
  const auto sjf = env.run_priority(sched::sjf_priority(),
                                    sim::PriorityKind::TimeInvariant);

  std::cout << "\nscheduling 512 unseen jobs (with backfilling):\n"
            << "  RLScheduler: avg bounded slowdown = "
            << rl.avg_bounded_slowdown << ", util = " << rl.utilization
            << "\n  SJF:         avg bounded slowdown = "
            << sjf.avg_bounded_slowdown << ", util = " << sjf.utilization
            << "\n";
  std::cout << "\n(train longer — e.g. ./quickstart 30 — for a stronger "
               "policy)\n";
  return 0;
}
