// Scenario: optimize several goals at once (paper SS V-F). A production
// operator wants low job slowdown AND high machine utilization; no fixed
// heuristic can be re-weighted between those goals, but RLScheduler just
// takes a different reward. This example trains two policies — slowdown-only
// and a weighted slowdown+utilization composite — and shows the trade-off
// on held-out sequences.
//
// Usage: ./multi_objective [epochs] [util_weight]
#include <cstdlib>
#include <iostream>

#include "core/rlscheduler.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace rlsched;
  const std::size_t epochs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const double util_weight =
      argc > 2 ? std::strtod(argv[2], nullptr) : 200.0;

  auto trace = workload::make_trace("Lublin-1", 10000, 42);

  core::RLSchedulerConfig base;
  base.trajectories_per_epoch = 10;
  base.pi_iters = 10;
  base.v_iters = 10;
  base.minibatch = 512;

  // Policy A: minimize bounded slowdown only.
  core::RLScheduler slowdown_only(trace, base);

  // Policy B: slowdown + utilization, weighted so both terms have
  // comparable scale (bsld is O(100), util is O(1)).
  auto combo_cfg = base;
  combo_cfg.composite = rl::CompositeReward(
      {{sim::Metric::BoundedSlowdown, 1.0},
       {sim::Metric::Utilization, util_weight}});
  core::RLScheduler combined(trace, combo_cfg);

  std::cout << "training policy A (reward: -bsld) and policy B (reward: "
            << combo_cfg.composite.describe() << ") for " << epochs
            << " epochs each...\n";
  slowdown_only.train(epochs);
  combined.train(epochs);

  util::Rng rng(5);
  std::vector<std::vector<trace::Job>> seqs;
  for (int i = 0; i < 5; ++i) seqs.push_back(trace.sample_sequence(rng, 512));

  util::Table table("held-out performance (5 x 512-job sequences, backfill)");
  table.set_header({"Policy", "avg bsld", "utilization"});
  const std::pair<core::RLScheduler*, std::string> entries[] = {
      {&slowdown_only, "A: bsld only"}, {&combined, "B: bsld + util"}};
  for (const auto& [policy, label] : entries) {
    double bsld = 0.0, util = 0.0;
    for (const auto& seq : seqs) {
      core::ScheduleRequest req;
      req.jobs = &seq;
      req.backfill = true;
      const auto r = policy->schedule(req).value().run();
      bsld += r.avg_bounded_slowdown / 5.0;
      util += r.utilization / 5.0;
    }
    table.add_row(
        {label, util::Table::fmt(bsld, 5), util::Table::fmt(util, 4)});
  }
  std::cout << table
            << "\nTune the weight (argv[2]) to move along the trade-off; no\n"
               "scheduler code changes required — only the reward.\n";
  return 0;
}
