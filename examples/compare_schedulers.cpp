// Scenario: a cluster operator wants to know which scheduling policy fits
// their workload and optimization goal. This example sweeps all five
// heuristic baselines (Table III) over every bundled workload and all four
// scheduling metrics (SS II-A3), with and without EASY backfilling — the
// decision matrix that motivates an adaptive scheduler in the first place:
// no single heuristic wins everywhere.
//
// Usage: ./compare_schedulers [sequence_len] [num_sequences]
#include <cstdlib>
#include <iostream>

#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace rlsched;
  const std::size_t len = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  const std::size_t reps = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 5;

  const sim::Metric metrics[] = {
      sim::Metric::BoundedSlowdown, sim::Metric::WaitTime,
      sim::Metric::Turnaround, sim::Metric::Utilization};

  for (const auto metric : metrics) {
    util::Table table("metric: " + sim::metric_name(metric) +
                      (sim::reward_sign(metric) > 0 ? " (higher is better)"
                                                    : " (lower is better)"));
    std::vector<std::string> header = {"Trace", "backfill"};
    for (const auto& h : sched::all_heuristics()) header.push_back(h.name);
    header.push_back("winner");
    table.set_header(header);

    for (const auto& name : workload::trace_names()) {
      const auto trace = workload::make_trace(name, 10000, 42);
      util::Rng rng(9);
      std::vector<std::vector<trace::Job>> seqs;
      for (std::size_t i = 0; i < reps; ++i) {
        seqs.push_back(trace.sample_sequence(rng, len));
      }
      for (const bool backfill : {false, true}) {
        std::vector<std::string> row = {name, backfill ? "yes" : "no"};
        double best_v = 0.0;
        std::string best_name;
        bool first = true;
        for (const auto& h : sched::all_heuristics()) {
          double sum = 0.0;
          for (const auto& seq : seqs) {
            sim::EnvConfig cfg;
            cfg.backfill = backfill;
            sim::SchedulingEnv env(trace.processors(), cfg);
            env.reset(seq);
            sum += env.run_priority(h.priority, h.kind).value(metric);
          }
          const double avg = sum / static_cast<double>(reps);
          row.push_back(util::Table::fmt(avg, 4));
          const bool better = first || (sim::reward_sign(metric) > 0
                                            ? avg > best_v
                                            : avg < best_v);
          if (better) {
            best_v = avg;
            best_name = h.name;
          }
          first = false;
        }
        row.push_back(best_name);
        table.add_row(row);
      }
    }
    std::cout << table << "\n";
  }
  std::cout << "Note how the winner column changes across traces and\n"
               "metrics — the adaptation problem RLScheduler automates.\n";
  return 0;
}
