// Scenario: train once, deploy elsewhere (the paper's SS V-E stability
// story). Trains a model on one workload, persists it to disk, reloads it,
// and applies it to a different cluster's workload — reporting how the
// transplanted policy compares to the heuristics on the target system.
//
// Usage: ./train_and_transfer [train_trace] [target_trace] [epochs]
//        traces: SDSC-SP2 HPC2N PIK-IPLEX ANL-Intrepid Lublin-1 Lublin-2
#include <cstdlib>
#include <iostream>

#include "core/rlscheduler.hpp"
#include "sched/heuristics.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace rlsched;
  const std::string train_name = argc > 1 ? argv[1] : "Lublin-1";
  const std::string target_name = argc > 2 ? argv[2] : "SDSC-SP2";
  const std::size_t epochs = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 5;

  auto train_trace = workload::make_trace(train_name, 10000, 42);
  auto target_trace = workload::make_trace(target_name, 10000, 17);

  core::RLSchedulerConfig cfg;
  cfg.trajectories_per_epoch = 10;
  cfg.pi_iters = 10;
  cfg.v_iters = 10;
  cfg.minibatch = 512;
  core::RLScheduler scheduler(train_trace, cfg);
  std::cout << "training on " << train_name << " for " << epochs
            << " epochs...\n";
  scheduler.train(epochs);

  // Persist and reload — what a deployment would do.
  const std::string model_path = "rl_" + train_name + ".model.txt";
  scheduler.save(model_path);
  std::cout << "model saved to " << model_path << " ("
            << scheduler.trainer().policy().parameter_count()
            << " policy parameters)\n";
  core::RLScheduler deployed(train_trace, cfg);
  deployed.load(model_path);

  // Apply to the target system against all heuristics.
  util::Rng rng(5);
  std::vector<std::vector<trace::Job>> seqs;
  for (int i = 0; i < 5; ++i) {
    seqs.push_back(target_trace.sample_sequence(rng, 512));
  }
  util::Table table("avg bounded slowdown on " + target_name +
                    " (backfilling on; model trained on " + train_name + ")");
  table.set_header({"Scheduler", "bsld"});
  for (const auto& h : sched::all_heuristics()) {
    double sum = 0.0;
    for (const auto& seq : seqs) {
      sim::EnvConfig env_cfg;
      env_cfg.backfill = true;
      sim::SchedulingEnv env(target_trace.processors(), env_cfg);
      env.reset(seq);
      sum += env.run_priority(h.priority, h.kind).avg_bounded_slowdown;
    }
    table.add_row({h.name, util::Table::fmt(sum / 5.0, 5)});
  }
  double rl_sum = 0.0;
  for (const auto& seq : seqs) {
    // .processors overrides the training cluster: the transplanted model
    // schedules on the target trace's machine.
    core::ScheduleRequest req;
    req.jobs = &seq;
    req.processors = target_trace.processors();
    req.backfill = true;
    rl_sum += deployed.schedule(req).value().run().avg_bounded_slowdown;
  }
  table.add_row({"RL-" + train_name, util::Table::fmt(rl_sum / 5.0, 5)});
  std::cout << table
            << "\n(paper Table VII: the transplanted model degrades "
               "gracefully —\nit stays within the heuristic range rather "
               "than failing catastrophically)\n";
  return 0;
}
