// Scenario: working with Standard Workload Format (SWF) files — the format
// of the Parallel Workloads Archive traces the paper evaluates on. This
// example synthesizes a workload, exports it as SWF, reloads it (exactly
// what you would do with a downloaded archive trace), reports its
// characteristics, and schedules a slice of it while demonstrating the
// fairness metrics (SS V-F).
//
// With --stream the reload side switches to the archive-scale path: a
// trace::ShardedReader cursors the file in fixed-size chunks, Table II
// characteristics accumulate incrementally (CharacteristicsAccumulator),
// and the WHOLE trace is scheduled through the simulator's streaming
// reset() with per-job bounded-slowdown percentiles estimated on the fly
// (util::P2Quantile) — nothing ever materializes the full job vector, yet
// the schedule is bitwise identical to the materialized run.
//
// Usage: ./swf_pipeline [output.swf] [--stream [chunk_jobs]]
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "trace/sharded_reader.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

namespace {
// Streaming leg: characteristics, then a full-trace SJF schedule, all in
// O(chunk + backlog) memory. Returns the exit status.
int run_streamed(const std::string& path, std::size_t chunk) {
  using namespace rlsched;
  trace::ShardedReader reader(path, "HPC2N-like");

  // Pass 1: incremental Table II characteristics, chunk by chunk.
  trace::CharacteristicsAccumulator acc;
  {
    std::vector<trace::Job> buf;
    buf.reserve(chunk);
    while (true) {
      buf.clear();
      if (reader.fetch(chunk, buf) == 0) break;
      for (const trace::Job& j : buf) acc.add(j);
    }
  }
  const auto c = acc.finish(reader.name(), reader.processors());
  util::Table info("streamed characteristics (never materialized)");
  info.set_header({"field", "value"});
  info.add_row({"processors", std::to_string(c.processors)});
  info.add_row({"jobs", std::to_string(c.jobs)});
  info.add_row({"mean inter-arrival (s)",
                util::Table::fmt(c.mean_interarrival, 4)});
  info.add_row({"mean requested time (s)",
                util::Table::fmt(c.mean_requested_time, 5)});
  info.add_row({"distinct users", std::to_string(c.distinct_users)});
  std::cout << info << "\n";

  // Pass 2: schedule the whole trace with SJF, streaming. The start hook
  // feeds P2 estimators since streamed episodes do not retain per-job
  // records.
  struct Hooks {
    util::P2Quantile p50{0.5}, p99{0.99};
  } hooks;
  sim::SchedulingEnv env(reader.processors());
  env.set_start_hook(
      [](void* ctx, const trace::Job& j) {
        auto* h = static_cast<Hooks*>(ctx);
        const double bsld = sim::bounded_slowdown(j.wait_time(), j.run_time);
        h->p50.add(bsld);
        h->p99.add(bsld);
      },
      &hooks);
  env.reset(reader, chunk);  // rewinds the reader for pass 2
  const auto result = env.run_priority(sched::sjf_priority());

  std::cout << "SJF over the full " << result.jobs << "-job stream (chunk "
            << chunk << ", final live buffer " << env.buffered_jobs()
            << " jobs):\n"
            << "  avg wait             = " << result.avg_wait << " s\n"
            << "  avg bounded slowdown = " << result.avg_bounded_slowdown
            << "\n  p50 / p99 bsld       = " << hooks.p50.value() << " / "
            << hooks.p99.value() << "  (P2 streaming estimates)\n"
            << "  utilization          = " << result.utilization << "\n";
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace rlsched;
  std::string path = "hpc2n_like.swf";
  bool stream = false;
  std::size_t chunk = 1024;
  const auto all_digits = [](const char* s) {
    if (*s == '\0') return false;
    for (; *s != '\0'; ++s) {
      if (*s < '0' || *s > '9') return false;
    }
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stream") {
      stream = true;
      // Optional chunk size — consumed only when it is actually a number,
      // so `--stream some.swf` keeps the filename as the path.
      if (i + 1 < argc && all_digits(argv[i + 1])) {
        chunk = static_cast<std::size_t>(
            std::max(1L, std::strtol(argv[++i], nullptr, 10)));
      }
    } else {
      path = arg;
    }
  }

  // Export a synthetic HPC2N lookalike as SWF — unless the caller pointed
  // us at an existing archive, which must never be overwritten.
  if (std::ifstream(path).good()) {
    std::cout << "using existing " << path << "\n";
  } else {
    const auto generated = workload::make_trace("HPC2N", 5000, 123);
    generated.save_swf(path);
    std::cout << "wrote " << generated.size() << " jobs to " << path << "\n";
  }

  // Archive-scale leg: never materialize, stream everything.
  if (stream) return run_streamed(path, chunk);

  // Reload as if it were a downloaded archive trace. For a real trace:
  //   auto trace = trace::Trace::load_swf("SDSC-SP2-1998-4.2-cln.swf");
  auto trace = trace::Trace::load_swf(path, "HPC2N-like");
  const auto c = trace.characteristics();
  util::Table info("trace characteristics (Table II columns)");
  info.set_header({"field", "value"});
  info.add_row({"processors", std::to_string(c.processors)});
  info.add_row({"jobs", std::to_string(c.jobs)});
  info.add_row({"mean inter-arrival (s)", util::Table::fmt(c.mean_interarrival, 4)});
  info.add_row({"mean requested time (s)", util::Table::fmt(c.mean_requested_time, 5)});
  info.add_row({"mean requested procs", util::Table::fmt(c.mean_requested_procs, 3)});
  info.add_row({"distinct users", std::to_string(c.distinct_users)});
  std::cout << info << "\n";

  // Schedule a 256-job slice with SJF and inspect global vs per-user
  // fairness: HPC2N-like traces are dominated by one heavy user.
  const auto seq = trace.sequence(1000, 256);
  sim::SchedulingEnv env(trace.processors());
  env.reset(seq);
  const auto result = env.run_priority(sched::sjf_priority());

  std::cout << "SJF on jobs [1000, 1256):\n"
            << "  avg wait            = " << result.avg_wait << " s\n"
            << "  avg bounded slowdown = " << result.avg_bounded_slowdown
            << "\n  utilization          = " << result.utilization
            << "\n  makespan             = " << result.makespan << " s\n"
            << "  max per-user bsld    = " << result.max_user_bounded_slowdown
            << "  (the Maximal fairness aggregate)\n";

  const auto per_user = sim::per_user_bounded_slowdown(env.jobs());
  std::size_t shown = 0;
  std::cout << "\nper-user avg bounded slowdown (first 8 users):\n";
  for (const auto& [user, bsld] : per_user) {
    if (shown++ >= 8) break;
    std::cout << "  user " << user << ": " << bsld << "\n";
  }
  return 0;
}
