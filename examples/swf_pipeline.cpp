// Scenario: working with Standard Workload Format (SWF) files — the format
// of the Parallel Workloads Archive traces the paper evaluates on. This
// example synthesizes a workload, exports it as SWF, reloads it (exactly
// what you would do with a downloaded archive trace), reports its
// characteristics, and schedules a slice of it while demonstrating the
// fairness metrics (SS V-F).
//
// Usage: ./swf_pipeline [output.swf]
#include <iostream>

#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace rlsched;
  const std::string path = argc > 1 ? argv[1] : "hpc2n_like.swf";

  // Export a synthetic HPC2N lookalike as SWF.
  auto generated = workload::make_trace("HPC2N", 5000, 123);
  generated.save_swf(path);
  std::cout << "wrote " << generated.size() << " jobs to " << path << "\n";

  // Reload as if it were a downloaded archive trace. For a real trace:
  //   auto trace = trace::Trace::load_swf("SDSC-SP2-1998-4.2-cln.swf");
  auto trace = trace::Trace::load_swf(path, "HPC2N-like");
  const auto c = trace.characteristics();
  util::Table info("trace characteristics (Table II columns)");
  info.set_header({"field", "value"});
  info.add_row({"processors", std::to_string(c.processors)});
  info.add_row({"jobs", std::to_string(c.jobs)});
  info.add_row({"mean inter-arrival (s)", util::Table::fmt(c.mean_interarrival, 4)});
  info.add_row({"mean requested time (s)", util::Table::fmt(c.mean_requested_time, 5)});
  info.add_row({"mean requested procs", util::Table::fmt(c.mean_requested_procs, 3)});
  info.add_row({"distinct users", std::to_string(c.distinct_users)});
  std::cout << info << "\n";

  // Schedule a 256-job slice with SJF and inspect global vs per-user
  // fairness: HPC2N-like traces are dominated by one heavy user.
  const auto seq = trace.sequence(1000, 256);
  sim::SchedulingEnv env(trace.processors());
  env.reset(seq);
  const auto result = env.run_priority(sched::sjf_priority());

  std::cout << "SJF on jobs [1000, 1256):\n"
            << "  avg wait            = " << result.avg_wait << " s\n"
            << "  avg bounded slowdown = " << result.avg_bounded_slowdown
            << "\n  utilization          = " << result.utilization
            << "\n  makespan             = " << result.makespan << " s\n"
            << "  max per-user bsld    = " << result.max_user_bounded_slowdown
            << "  (the Maximal fairness aggregate)\n";

  const auto per_user = sim::per_user_bounded_slowdown(env.jobs());
  std::size_t shown = 0;
  std::cout << "\nper-user avg bounded slowdown (first 8 users):\n";
  for (const auto& [user, bsld] : per_user) {
    if (shown++ >= 8) break;
    std::cout << "  user " << user << ": " << bsld << "\n";
  }
  return 0;
}
